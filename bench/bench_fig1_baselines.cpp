// Figure 1 reproduction: performance of three baseline RSM implementations
// (mongo-like, tidb-like, rethink-like — the confirmed root-cause behaviours
// of MongoDB, TiDB, RethinkDB) with one fail-slow follower on 3-node
// deployments, normalized to each system's own no-fault baseline.
//
// Paper reference (§2.2): a fail-slow follower causes up to 17-41% lower
// throughput, 21-50% higher average latency, and 1.6-3.46x higher P99 across
// the three systems; fail-slow CPU faults crashed the RethinkDB leader.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/faults/fault_types.h"

namespace depfast {
namespace bench {
namespace {

struct Condition {
  FaultType fault;
  BenchResult result;
  bool crashed = false;
};

void RunProfile(const NaiveProfile& profile, uint64_t measure_us) {
  PrintHeader("Figure 1 — baseline \"" + profile.name +
              "\", 3 nodes, one fail-slow follower");
  printf("%-20s %12s %12s %12s %10s %10s %10s  %s\n", "fault", "tput(op/s)", "avg(us)",
         "p99(us)", "tput(rel)", "avg(rel)", "p99(rel)", "note");
  BenchResult base;
  for (FaultType fault : {FaultType::kNone, FaultType::kCpuSlow, FaultType::kCpuContention,
                          FaultType::kDiskSlow, FaultType::kDiskContention,
                          FaultType::kMemContention, FaultType::kNetworkSlow}) {
    NaiveCluster cluster(PaperNaiveCluster(profile));
    if (fault != FaultType::kNone) {
      cluster.InjectFault(1, fault);
    }
    BenchResult r = RunDriver(cluster, PaperDriver(measure_us));
    bool crashed = false;
    cluster.RunOn(0, [&]() { crashed = cluster.server(0).node->crashed(); });
    if (fault == FaultType::kNone) {
      base = r;
    }
    double tput_rel = base.throughput_ops > 0 ? r.throughput_ops / base.throughput_ops : 0;
    double avg_rel = base.avg_latency_us > 0 ? r.avg_latency_us / base.avg_latency_us : 0;
    double p99_rel =
        base.p99_us > 0 ? static_cast<double>(r.p99_us) / static_cast<double>(base.p99_us) : 0;
    printf("%-20s %12.0f %12.0f %12llu %10.3f %10.3f %10.3f  %s\n", FaultTypeName(fault),
           r.throughput_ops, r.avg_latency_us, (unsigned long long)r.p99_us, tput_rel, avg_rel,
           p99_rel, crashed ? "LEADER CRASHED (OOM)" : "");
  }
}

// §2.2: "In RethinkDB, fail-slow faults on CPUs crashed the leader." The
// unbounded outgoing buffer grows until the leader is OOM-killed; the
// measurement windows above end before that point, so demonstrate the
// crash endpoint explicitly on a longer run.
void RunRethinkCrashDemo() {
  PrintHeader("Figure 1 endnote — rethink-like leader OOM under a CPU fail-slow follower");
  NaiveCluster cluster(PaperNaiveCluster(NaiveProfile::RethinkLike()));
  cluster.InjectFault(1, FaultType::kCpuSlow);
  auto driver = PaperDriver(12000000);
  driver.warmup_us = 0;
  uint64_t begin = MonotonicUs();
  // Poll for the crash while the driver runs in a helper thread.
  std::atomic<bool> done{false};
  std::atomic<uint64_t> crash_at{0};
  std::thread poller([&]() {
    while (!done.load()) {
      bool crashed = false;
      cluster.RunOn(0, [&]() { crashed = cluster.server(0).node->crashed(); });
      if (crashed && crash_at.load() == 0) {
        crash_at.store(MonotonicUs() - begin);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });
  BenchResult r = RunDriver(cluster, driver);
  done.store(true);
  poller.join();
  uint64_t buffer = 0;
  cluster.RunOn(0, [&]() { buffer = cluster.server(0).node->BufferBytes(); });
  if (crash_at.load() != 0) {
    printf("leader OOM-crashed %.1f s after the fault (outgoing buffer kept growing);\n"
           "%llu client ops failed after the crash.\n",
           static_cast<double>(crash_at.load()) / 1e6, (unsigned long long)r.n_failures);
  } else {
    printf("leader survived the window; buffer footprint %llu bytes and growing.\n",
           (unsigned long long)buffer);
  }
}

}  // namespace
}  // namespace bench
}  // namespace depfast

int main(int argc, char** argv) {
  depfast::SetLogLevel(depfast::LogLevel::kError);
  std::string metrics_json = depfast::bench::TakeFlag(argc, argv, "--metrics-json");
  uint64_t measure_us = 2000000;
  if (argc > 1) {
    measure_us = std::stoull(argv[1]) * 1000000ull;
  }
  using depfast::NaiveProfile;
  depfast::bench::RunProfile(NaiveProfile::MongoLike(), measure_us);
  depfast::bench::RunProfile(NaiveProfile::TidbLike(), measure_us);
  depfast::bench::RunProfile(NaiveProfile::RethinkLike(), measure_us);
  depfast::bench::RunRethinkCrashDemo();
  printf(
      "\nPaper reference (Fig. 1, §2.2): one fail-slow follower causes up to 17-41%%\n"
      "throughput loss, 21-50%% average-latency increase and 1.6-3.46x P99 increase\n"
      "across MongoDB/TiDB/RethinkDB; CPU fail-slow crashed the RethinkDB leader.\n");
  depfast::bench::DumpMetricsJson(metrics_json);
  return 0;
}
