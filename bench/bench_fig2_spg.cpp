// Figure 2 reproduction: the slowness propagation graph (SPG) of a 3-shard
// DepFastRaft deployment (9 servers s1..s9, 3 clients c1..c3), generated
// from runtime event trace points.
//
// Expected structure (as in the paper's figure):
//  - within each shard, the leader's edges to its followers are GREEN
//    quorum edges labeled "2/3" — no single-event wait exists inside a
//    quorum;
//  - each client's edge to its shard's leader is a RED "1/1" edge — if a
//    leader fails slow, that client is affected (the paper's noted
//    limitation, addressed by Copilot-style protocols).
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <thread>

#include "bench/bench_common.h"
#include "src/runtime/trace.h"

namespace depfast {
namespace bench {
namespace {

void Run(const std::string& out_path) {
  PrintHeader("Figure 2 — slowness propagation graph, 3 shards x 3 replicas");

  // Three independent shards: s1-s3, s4-s6, s7-s9 (leaders s1, s4, s7).
  std::vector<std::unique_ptr<RaftCluster>> shards;
  for (int k = 0; k < 3; k++) {
    auto opts = PaperRaftCluster(3);
    opts.first_node_id = static_cast<NodeId>(3 * k + 1);
    shards.push_back(std::make_unique<RaftCluster>(opts));
  }

  Tracer::Instance().Clear();
  Tracer::Instance().Enable();

  // One client per shard, a few hundred requests each.
  std::vector<std::unique_ptr<RaftClientHandle>> clients;
  std::atomic<int> done{0};
  for (int k = 0; k < 3; k++) {
    clients.push_back(shards[static_cast<size_t>(k)]->MakeClient("c" + std::to_string(k + 1)));
    RaftClient* session = clients.back()->session.get();
    clients.back()->thread->reactor()->Post([session, &done]() {
      Coroutine::Create([session, &done]() {
        for (int i = 0; i < 300; i++) {
          session->Put("key" + std::to_string(i), "value");
        }
        done++;
      });
    });
  }
  while (done.load() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  Tracer::Instance().Disable();

  auto records = Tracer::Instance().Snapshot();
  Spg spg = Spg::Build(records);
  printf("trace points collected: %zu; aggregated SPG edges: %zu\n\n", records.size(),
         spg.edges().size());
  printf("%-6s %-6s %-8s %-6s %10s %14s\n", "src", "dst", "color", "label", "waits",
         "total-wait(ms)");
  for (const auto& e : spg.edges()) {
    printf("%-6s %-6s %-8s %-6s %10llu %14.1f\n", e.src.c_str(), e.dst.c_str(),
           e.quorum ? "green" : "red", e.Label().c_str(), (unsigned long long)e.count,
           static_cast<double>(e.total_wait_us) / 1000.0);
  }

  // The paper's verification claim: no single-event wait inside any quorum.
  bool any_server_red = false;
  for (const auto& e : spg.SingleWaitEdges()) {
    if (e.src[0] == 's') {
      any_server_red = true;
    }
  }
  printf("\nverification: server-to-server single-event (red) waits: %s\n",
         any_server_red ? "PRESENT (fail-slow propagation hazard!)" : "none — fail-slow tolerant");
  printf("clients wait on leaders via red 1/1 edges: %s\n",
         spg.HasSingleWaitEdge("c1", "s1") && spg.HasSingleWaitEdge("c2", "s4") &&
                 spg.HasSingleWaitEdge("c3", "s7")
             ? "yes (leader slowness reaches clients, as the paper notes)"
             : "unexpected topology");

  printf("\nGraphviz (%s):\n%s", out_path.c_str(), spg.ToDot().c_str());
  FILE* f = fopen(out_path.c_str(), "w");
  if (f != nullptr) {
    fputs(spg.ToDot().c_str(), f);
    fclose(f);
    printf("written to %s\n", out_path.c_str());
  } else {
    fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
  }

  for (auto& shard : shards) {
    shard->ExportMetrics();
  }
}

}  // namespace
}  // namespace bench
}  // namespace depfast

int main(int argc, char** argv) {
  depfast::SetLogLevel(depfast::LogLevel::kError);
  std::string out = depfast::bench::TakeFlag(argc, argv, "--out", "figure2.dot");
  std::string metrics_json = depfast::bench::TakeFlag(argc, argv, "--metrics-json");
  depfast::bench::Run(out);
  depfast::bench::DumpMetricsJson(metrics_json);
  return 0;
}
