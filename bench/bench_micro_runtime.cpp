// Microbenchmarks (google-benchmark) of the DepFast runtime primitives:
// coroutine lifecycle, event operations, quorum events, marshal throughput,
// reactor posting, and RPC echo over the sim transport. These quantify the
// per-wait-point cost the programming model introduces.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/base/marshal.h"
#include "src/base/rand.h"
#include "src/base/histogram.h"
#include "src/rpc/rpc.h"
#include "src/rpc/sim_transport.h"
#include "src/runtime/compound_event.h"
#include "src/runtime/coro_mutex.h"
#include "src/runtime/event.h"
#include "src/runtime/reactor.h"

namespace depfast {
namespace {

void BM_CoroutineCreateRun(benchmark::State& state) {
  Reactor reactor("bench");
  for (auto _ : state) {
    int x = 0;
    Coroutine::Create([&]() { x = 1; });
    reactor.RunUntilIdle();
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_CoroutineCreateRun);

void BM_CoroutineYieldResume(benchmark::State& state) {
  Reactor reactor("bench");
  // One long-lived coroutine ping-ponging with the scheduler.
  Coroutine* co = nullptr;
  bool stop = false;
  Coroutine::Create([&]() {
    co = Coroutine::Current();
    while (!stop) {
      Coroutine::Yield();
    }
  });
  reactor.RunUntilIdle();
  for (auto _ : state) {
    reactor.Schedule(co);
    reactor.RunUntilIdle();
  }
  stop = true;
  reactor.Schedule(co);
  reactor.RunUntilIdle();
}
BENCHMARK(BM_CoroutineYieldResume);

void BM_IntEventSetWait(benchmark::State& state) {
  Reactor reactor("bench");
  for (auto _ : state) {
    auto ev = std::make_shared<IntEvent>();
    Coroutine::Create([ev]() { ev->Wait(); });
    Coroutine::Create([ev]() { ev->Set(1); });
    reactor.RunUntilIdle();
  }
}
BENCHMARK(BM_IntEventSetWait);

void BM_QuorumEvent(benchmark::State& state) {
  Reactor reactor("bench");
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto q = std::make_shared<QuorumEvent>(n, n / 2 + 1);
    std::vector<std::shared_ptr<IntEvent>> kids;
    for (int i = 0; i < n; i++) {
      kids.push_back(std::make_shared<IntEvent>());
      q->AddChild(kids.back());
    }
    Coroutine::Create([q]() { q->Wait(); });
    Coroutine::Create([&kids]() {
      for (auto& k : kids) {
        k->Set(1);
      }
    });
    reactor.RunUntilIdle();
  }
}
BENCHMARK(BM_QuorumEvent)->Arg(3)->Arg(5)->Arg(9)->Arg(33);

void BM_CoroMutexLockUnlock(benchmark::State& state) {
  Reactor reactor("bench");
  CoroMutex mu;
  for (auto _ : state) {
    bool done = false;
    Coroutine::Create([&]() {
      CoroLock lock(mu);
      done = true;
    });
    reactor.RunUntilIdle();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_CoroMutexLockUnlock);

void BM_ReactorPostAndRun(benchmark::State& state) {
  Reactor reactor("bench");
  for (auto _ : state) {
    int x = 0;
    reactor.Post([&]() { x = 1; });
    reactor.RunUntilIdle();
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_ReactorPostAndRun);

void BM_MarshalWriteRead(benchmark::State& state) {
  std::string value(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    Marshal m;
    m << uint64_t{7} << value << uint32_t{9};
    uint64_t a = 0;
    std::string s;
    uint32_t b = 0;
    m >> a >> s >> b;
    benchmark::DoNotOptimize(s);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_MarshalWriteRead)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(7);
  for (auto _ : state) {
    h.Record(rng.NextRange(1, 1000000));
  }
  benchmark::DoNotOptimize(h.Percentile(99));
}
BENCHMARK(BM_HistogramRecord);

void BM_ZipfianNext(benchmark::State& state) {
  ScrambledZipfianGenerator zipf(500000);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
}
BENCHMARK(BM_ZipfianNext);

void BM_SimTransportSendDeliver(benchmark::State& state) {
  Reactor reactor("bench");
  LinkParams p;
  p.base_delay_us = 0;
  p.jitter_p = 0;
  SimTransport transport(p);
  int delivered = 0;
  transport.RegisterNode(2, &reactor, [&](NodeId, Marshal) { delivered++; });
  for (auto _ : state) {
    Marshal m;
    m << uint64_t{1};
    transport.Send(1, 2, std::move(m), SendOpts{});
    reactor.RunUntilIdle();
  }
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_SimTransportSendDeliver);

void BM_RpcEchoSameThread(benchmark::State& state) {
  Reactor reactor("bench");
  LinkParams p;
  p.base_delay_us = 0;
  p.jitter_p = 0;
  SimTransport transport(p);
  RpcEndpoint client(1, "client", &reactor, &transport);
  RpcEndpoint server(2, "server", &reactor, &transport);
  server.Register(1, [](NodeId, Marshal& args, Marshal* reply) {
    uint64_t v = 0;
    args >> v;
    *reply << v;
  });
  for (auto _ : state) {
    bool done = false;
    Coroutine::Create([&]() {
      Marshal args;
      args << uint64_t{42};
      auto ev = client.Call(2, 1, std::move(args));
      ev->Wait();
      done = true;
    });
    reactor.RunUntilIdle();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_RpcEchoSameThread);

}  // namespace
}  // namespace depfast

BENCHMARK_MAIN();
