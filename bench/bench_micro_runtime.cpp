// Microbenchmarks (google-benchmark) of the DepFast runtime primitives:
// coroutine lifecycle, event operations, quorum events, marshal throughput,
// reactor posting, and RPC echo over the sim transport. These quantify the
// per-wait-point cost the programming model introduces.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/base/marshal.h"
#include "src/base/metrics.h"
#include "src/base/rand.h"
#include "src/base/histogram.h"
#include "src/raft/raft_cluster.h"
#include "src/rpc/rpc.h"
#include "src/rpc/sim_transport.h"
#include "src/workload/driver.h"
#include "src/runtime/compound_event.h"
#include "src/runtime/coro_mutex.h"
#include "src/runtime/event.h"
#include "src/runtime/reactor.h"
#include "src/runtime/trace.h"

namespace depfast {
namespace {

void BM_CoroutineCreateRun(benchmark::State& state) {
  Reactor reactor("bench");
  for (auto _ : state) {
    int x = 0;
    Coroutine::Create([&]() { x = 1; });
    reactor.RunUntilIdle();
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_CoroutineCreateRun);

void BM_CoroutineYieldResume(benchmark::State& state) {
  Reactor reactor("bench");
  // One long-lived coroutine ping-ponging with the scheduler.
  Coroutine* co = nullptr;
  bool stop = false;
  Coroutine::Create([&]() {
    co = Coroutine::Current();
    while (!stop) {
      Coroutine::Yield();
    }
  });
  reactor.RunUntilIdle();
  for (auto _ : state) {
    reactor.Schedule(co);
    reactor.RunUntilIdle();
  }
  stop = true;
  reactor.Schedule(co);
  reactor.RunUntilIdle();
}
BENCHMARK(BM_CoroutineYieldResume);

void BM_IntEventSetWait(benchmark::State& state) {
  Reactor reactor("bench");
  for (auto _ : state) {
    auto ev = std::make_shared<IntEvent>();
    Coroutine::Create([ev]() { ev->Wait(); });
    Coroutine::Create([ev]() { ev->Set(1); });
    reactor.RunUntilIdle();
  }
}
BENCHMARK(BM_IntEventSetWait);

void BM_QuorumEvent(benchmark::State& state) {
  Reactor reactor("bench");
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto q = std::make_shared<QuorumEvent>(n, n / 2 + 1);
    std::vector<std::shared_ptr<IntEvent>> kids;
    for (int i = 0; i < n; i++) {
      kids.push_back(std::make_shared<IntEvent>());
      q->AddChild(kids.back());
    }
    Coroutine::Create([q]() { q->Wait(); });
    Coroutine::Create([&kids]() {
      for (auto& k : kids) {
        k->Set(1);
      }
    });
    reactor.RunUntilIdle();
  }
}
BENCHMARK(BM_QuorumEvent)->Arg(3)->Arg(5)->Arg(9)->Arg(33);

// Tracing overhead on the hottest wait-point path: the same set+wait cycle
// with the sharded Tracer off (arg 0) and on (arg 1, drained at the online
// monitor's cadence so records don't just pile up and hit the drop path).
// The per-iteration delta between the two is the cost a wait point pays for
// always-on capture; the acceptance bar is <=2% on end-to-end throughput.
void BM_IntEventSetWaitTracing(benchmark::State& state) {
  Reactor reactor("bench");
  Tracer& tracer = Tracer::Instance();
  tracer.Clear();
  if (state.range(0) != 0) {
    tracer.Enable();
  }
  uint64_t n = 0;
  for (auto _ : state) {
    auto ev = std::make_shared<IntEvent>();
    Coroutine::Create([ev]() { ev->Wait(); });
    Coroutine::Create([ev]() { ev->Set(1); });
    reactor.RunUntilIdle();
    if ((++n & 0x3fff) == 0) {
      tracer.Drain();
    }
  }
  tracer.Disable();
  tracer.Clear();
}
BENCHMARK(BM_IntEventSetWaitTracing)->Arg(0)->Arg(1);

// Raw cost of Tracer::Record on the thread-local shard (the append itself,
// without the event machinery around it).
void BM_TracerRecord(benchmark::State& state) {
  Tracer& tracer = Tracer::Instance();
  tracer.Clear();
  tracer.Enable();
  uint64_t n = 0;
  for (auto _ : state) {
    WaitRecord r;
    r.node = "bench";
    r.kind = "int";
    r.wait_us = 12;
    r.end_us = 1;
    tracer.Record(std::move(r));
    if ((++n & 0x3fff) == 0) {
      tracer.Drain();
    }
  }
  tracer.Disable();
  tracer.Clear();
}
BENCHMARK(BM_TracerRecord);

// End-to-end form of the tracing-overhead question (the ISSUE's ≤2% bar):
// no-fault 3-node cluster throughput over real sockets with the observability
// stack off (arg 0) vs fully on — tracer, quorum-leg capture, and the online
// SpgMonitor polling at its default cadence (arg 1). Items/s = committed ops.
// Single-core CI boxes are noisy; compare paired repetitions (best ratio),
// as tcp_failslow_test does, rather than single means.
void BM_ClusterNoFaultThroughput(benchmark::State& state) {
  RaftClusterOptions opts;
  opts.n_nodes = 3;
  opts.pin_leader = true;
  opts.transport_kind = ClusterTransport::kTcp;
  opts.raft.send_queue_cap_bytes = 256 * 1024;
  opts.raft.batch_window_us = 200;
  opts.raft.leader_cmd_cost_us = 1;
  opts.raft.leader_propose_cost_us = 1;
  opts.raft.follower_append_cost_us = 1;
  opts.raft.apply_cost_us = 1;
  opts.disk.base_latency_us = 20;
  opts.enable_monitor = state.range(0) != 0;
  RaftCluster cluster(opts);
  if (!cluster.WaitForLeader()) {
    state.SkipWithError("no leader");
    return;
  }
  DriverConfig d;
  d.n_client_threads = 1;
  d.coroutines_per_client = 16;
  d.warmup_us = 200000;
  d.measure_us = 1000000;
  uint64_t ops = 0;
  for (auto _ : state) {
    BenchResult r = RunDriver(cluster, d);
    ops += r.n_ops;
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops));
  cluster.Shutdown();
}
BENCHMARK(BM_ClusterNoFaultThroughput)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()  // ops/s against wall time: the driver blocks while the
                     // reactor threads commit, so CPU time would mislead
    ->Iterations(2);

// The authoritative overhead number (the ≤2% acceptance bar). The Arg(0) /
// Arg(1) entries above run as sequential blocks minutes apart, and shared CI
// boxes drift by more than the effect size over that span — so this entry
// interleaves off/on clusters WITHIN each iteration (alternating which goes
// first) and reports the median paired ratio, which cancels the drift.
void BM_ClusterTracingOverheadPaired(benchmark::State& state) {
  RaftClusterOptions base;
  base.n_nodes = 3;
  base.pin_leader = true;
  base.transport_kind = ClusterTransport::kTcp;
  base.raft.send_queue_cap_bytes = 256 * 1024;
  base.raft.batch_window_us = 200;
  base.raft.leader_cmd_cost_us = 1;
  base.raft.leader_propose_cost_us = 1;
  base.raft.follower_append_cost_us = 1;
  base.raft.apply_cost_us = 1;
  base.disk.base_latency_us = 20;
  DriverConfig d;
  d.n_client_threads = 1;
  d.coroutines_per_client = 16;
  d.warmup_us = 200000;
  d.measure_us = 1000000;
  auto run_once = [&](bool monitor) -> double {
    RaftClusterOptions opts = base;
    opts.enable_monitor = monitor;
    RaftCluster cluster(opts);
    if (!cluster.WaitForLeader()) {
      return 0;
    }
    BenchResult r = RunDriver(cluster, d);
    cluster.Shutdown();
    return r.throughput_ops;
  };
  std::vector<double> ratios;
  double off_sum = 0;
  double on_sum = 0;
  int i = 0;
  for (auto _ : state) {
    double off;
    double on;
    if (i++ % 2 == 0) {
      off = run_once(false);
      on = run_once(true);
    } else {
      on = run_once(true);
      off = run_once(false);
    }
    if (off <= 0 || on <= 0) {
      state.SkipWithError("cluster failed to start");
      return;
    }
    off_sum += off;
    on_sum += on;
    ratios.push_back(on / off);
  }
  std::sort(ratios.begin(), ratios.end());
  double median = ratios.empty() ? 1.0 : ratios[ratios.size() / 2];
  state.counters["overhead_pct"] = (1.0 - median) * 100.0;
  state.counters["off_ops_s"] = off_sum / static_cast<double>(ratios.size());
  state.counters["on_ops_s"] = on_sum / static_cast<double>(ratios.size());
}
BENCHMARK(BM_ClusterTracingOverheadPaired)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(5);

void BM_CoroMutexLockUnlock(benchmark::State& state) {
  Reactor reactor("bench");
  CoroMutex mu;
  for (auto _ : state) {
    bool done = false;
    Coroutine::Create([&]() {
      CoroLock lock(mu);
      done = true;
    });
    reactor.RunUntilIdle();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_CoroMutexLockUnlock);

void BM_ReactorPostAndRun(benchmark::State& state) {
  Reactor reactor("bench");
  for (auto _ : state) {
    int x = 0;
    reactor.Post([&]() { x = 1; });
    reactor.RunUntilIdle();
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_ReactorPostAndRun);

void BM_MarshalWriteRead(benchmark::State& state) {
  std::string value(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    Marshal m;
    m << uint64_t{7} << value << uint32_t{9};
    uint64_t a = 0;
    std::string s;
    uint32_t b = 0;
    m >> a >> s >> b;
    benchmark::DoNotOptimize(s);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_MarshalWriteRead)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(7);
  for (auto _ : state) {
    h.Record(rng.NextRange(1, 1000000));
  }
  benchmark::DoNotOptimize(h.Percentile(99));
}
BENCHMARK(BM_HistogramRecord);

void BM_ZipfianNext(benchmark::State& state) {
  ScrambledZipfianGenerator zipf(500000);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
}
BENCHMARK(BM_ZipfianNext);

void BM_SimTransportSendDeliver(benchmark::State& state) {
  Reactor reactor("bench");
  LinkParams p;
  p.base_delay_us = 0;
  p.jitter_p = 0;
  SimTransport transport(p);
  int delivered = 0;
  transport.RegisterNode(2, &reactor, [&](NodeId, Marshal) { delivered++; });
  for (auto _ : state) {
    Marshal m;
    m << uint64_t{1};
    transport.Send(1, 2, std::move(m), SendOpts{});
    reactor.RunUntilIdle();
  }
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_SimTransportSendDeliver);

void BM_RpcEchoSameThread(benchmark::State& state) {
  Reactor reactor("bench");
  LinkParams p;
  p.base_delay_us = 0;
  p.jitter_p = 0;
  SimTransport transport(p);
  RpcEndpoint client(1, "client", &reactor, &transport);
  RpcEndpoint server(2, "server", &reactor, &transport);
  server.Register(1, [](NodeId, Marshal& args, Marshal* reply) {
    uint64_t v = 0;
    args >> v;
    *reply << v;
  });
  for (auto _ : state) {
    bool done = false;
    Coroutine::Create([&]() {
      Marshal args;
      args << uint64_t{42};
      auto ev = client.Call(2, 1, std::move(args));
      ev->Wait();
      done = true;
    });
    reactor.RunUntilIdle();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_RpcEchoSameThread);

}  // namespace
}  // namespace depfast

// Custom main (instead of BENCHMARK_MAIN) so --metrics-json can be stripped
// before google-benchmark sees (and rejects) it.
int main(int argc, char** argv) {
  std::string metrics_json;
  for (int i = 1; i + 1 < argc; i++) {
    if (std::string(argv[i]) == "--metrics-json") {
      metrics_json = argv[i + 1];
      for (int j = i; j + 2 < argc; j++) {
        argv[j] = argv[j + 2];
      }
      argc -= 2;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!metrics_json.empty()) {
    FILE* f = fopen(metrics_json.c_str(), "w");
    if (f != nullptr) {
      std::string json = depfast::MetricsRegistry::Global().RenderJson();
      fwrite(json.data(), 1, json.size(), f);
      fputc('\n', f);
      fclose(f);
    }
  }
  return 0;
}
