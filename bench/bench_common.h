// Shared configuration of the paper-reproduction benchmarks: one scaled-down
// "testbed" used by every figure so numbers are comparable across binaries.
//
// Scaling note (documented in EXPERIMENTS.md): the paper's testbed is
// 4-vCPU Azure VMs at ~5K req/s with 256-1200 open clients. Here a node is a
// reactor thread with a modeled CPU whose per-op costs are chosen so the
// leader lands at the same operating point the paper reports: ~70-80% CPU
// utilization at a base throughput of roughly 5K req/s, driven by a
// closed-loop client pool.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "src/base/metrics.h"
#include "src/naive/naive_cluster.h"
#include "src/raft/raft_cluster.h"
#include "src/workload/driver.h"

namespace depfast {
namespace bench {

inline RaftConfig PaperRaftConfig() {
  RaftConfig cfg;
  cfg.heartbeat_us = 30000;
  cfg.rpc_timeout_us = 150000;
  cfg.quorum_wait_us = 400000;
  cfg.client_op_timeout_us = 2000000;
  cfg.max_batch = 64;
  cfg.send_queue_cap_bytes = 256 * 1024;
  // Cost model: ~140us of leader CPU per op end-to-end => ~7K op/s CPU
  // capacity; the closed-loop pool below drives it to ~75% utilization and
  // ~5-6K op/s, the operating point §3.4 reports. The per-op charge is split
  // into parse (per client op) and propose (per LOG ENTRY): unbatched they
  // add up to the same 120us/op as before, while proposal coalescing pays
  // the propose share once per multi-op entry.
  cfg.leader_cmd_cost_us = 30;
  cfg.leader_propose_cost_us = 90;
  cfg.follower_append_cost_us = 30;
  cfg.apply_cost_us = 20;
  cfg.heartbeat_cost_us = 5;
  cfg.max_in_flight_rounds = 16;
  return cfg;
}

// The same testbed with proposal coalescing on: ops arriving within a 1ms
// window (or the first 64, or 64KB, whichever first) share one log entry,
// one WAL record and one replication round.
inline RaftConfig PaperBatchedRaftConfig(uint64_t window_us = 1000, size_t max_ops = 64) {
  RaftConfig cfg = PaperRaftConfig();
  cfg.batch_window_us = window_us;
  cfg.batch_max_ops = max_ops;
  return cfg;
}

inline LinkParams PaperLink() {
  LinkParams link;
  link.base_delay_us = 150;   // intra-DC one-way
  link.bytes_per_us = 100;    // ~100 MB/s
  link.jitter_p = 0.001;      // transient stalls on ALL links: the paper's
  link.jitter_us = 2000;      // "transient performance issues ... prolong the tail"
  return link;
}

inline SimDiskParams PaperDisk() {
  SimDiskParams disk;
  disk.base_latency_us = 150;  // SSD fsync
  disk.bytes_per_us = 200;
  return disk;
}

inline DriverConfig PaperDriver(uint64_t measure_us = 3000000) {
  DriverConfig cfg;
  // One client thread (low OS-thread contention on small hosts) running 32
  // concurrent closed-loop coroutines — enough demand to saturate the
  // leader, as the paper's 256-1200 clients do. At saturation, throughput is
  // capacity-bound, so it measures the leader's health rather than the
  // commit path's order statistics.
  cfg.n_client_threads = 1;
  cfg.coroutines_per_client = 32;
  cfg.warmup_us = 800000;
  cfg.measure_us = measure_us;
  cfg.ycsb.n_records = 500000;  // paper: 500K records
  cfg.ycsb.write_fraction = 1.0;
  cfg.ycsb.value_bytes = 100;
  return cfg;
}

inline RaftClusterOptions PaperRaftCluster(int n_nodes) {
  RaftClusterOptions opts;
  opts.n_nodes = n_nodes;
  opts.pin_leader = true;  // steady-state measurement, healthy leader
  opts.raft = PaperRaftConfig();
  opts.link = PaperLink();
  opts.disk = PaperDisk();
  return opts;
}

// The real-socket testbed (Ablation E): same 3-node shape but wired through
// TcpTransport over loopback. Modeled per-op costs are near zero — what this
// testbed measures is the socket path itself (framing, gather-writes,
// bounded buffers), so the CPU model must not be the bottleneck.
inline RaftClusterOptions TcpRaftCluster(bool enable_writev, uint64_t queue_cap_bytes) {
  RaftClusterOptions opts;
  opts.n_nodes = 3;
  opts.pin_leader = true;
  opts.transport_kind = ClusterTransport::kTcp;
  opts.tcp.enable_writev = enable_writev;
  opts.raft.send_queue_cap_bytes = queue_cap_bytes;  // 0 = unbounded
  opts.raft.batch_window_us = 200;
  opts.raft.leader_cmd_cost_us = 1;
  opts.raft.leader_propose_cost_us = 1;
  opts.raft.follower_append_cost_us = 1;
  opts.raft.apply_cost_us = 1;
  opts.disk.base_latency_us = 20;
  return opts;
}

inline NaiveClusterOptions PaperNaiveCluster(const NaiveProfile& profile) {
  NaiveClusterOptions opts;
  opts.n_nodes = 3;
  opts.profile = profile;
  opts.config = PaperRaftConfig();
  opts.link = PaperLink();
  opts.disk = PaperDisk();
  // Scaled-down machine RAM: at ~5K op/s of ~130-byte entries the unacked
  // buffer to a wedged follower crosses this within the run window, as the
  // real leader's RAM does over hours. The rethink-like profile (which is
  // the one modeling buffer memory at all) gets a tighter budget so the OOM
  // endpoint is reachable inside a benchmark window.
  opts.machine_mem_cap_bytes = profile.crash_on_oom ? (768ull << 10) : (2ull << 20);
  opts.machine_swap_penalty = 1.5;
  return opts;
}

// Extracts a `--flag value` pair from argv (compacting argv in place and
// shrinking argc), returning the value or `def` when absent. Call before any
// positional-argument parsing so flags can appear anywhere.
inline std::string TakeFlag(int& argc, char** argv, const std::string& flag,
                            const std::string& def = "") {
  for (int i = 1; i + 1 < argc; i++) {
    if (argv[i] == flag) {
      std::string value = argv[i + 1];
      for (int j = i; j + 2 < argc; j++) {
        argv[j] = argv[j + 2];
      }
      argc -= 2;
      return value;
    }
  }
  return def;
}

// Writes the global MetricsRegistry snapshot as flat JSON to `path` (no-op
// when empty). Every bench accepts --metrics-json <path> and calls this at
// exit, so BENCH_*.json trajectory files can be produced from any run.
inline void DumpMetricsJson(const std::string& path) {
  if (path.empty()) {
    return;
  }
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::string json = MetricsRegistry::Global().RenderJson();
  fwrite(json.data(), 1, json.size(), f);
  fputc('\n', f);
  fclose(f);
  printf("metrics snapshot written to %s\n", path.c_str());
}

inline void PrintHeader(const std::string& title) {
  printf("\n================================================================\n");
  printf("%s\n", title.c_str());
  printf("================================================================\n");
}

}  // namespace bench
}  // namespace depfast

#endif  // BENCH_BENCH_COMMON_H_
