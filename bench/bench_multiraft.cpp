// Multi-Raft scaling bench: throughput / tail latency vs group count on the
// shared-socket deployment (3 physical nodes over real loopback sockets, one
// connection per peer pair no matter how many groups), driven by a zipfian
// write workload over >= 1M records. Plus the evacuation ablation: with 64
// groups and one node turned fail-slow mid-run, closed-loop leader
// evacuation ON vs OFF.
//
// Emits machine-readable BENCH_multiraft.json (override with --out <path>);
// --quick shrinks windows for CI smoke runs.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/base/histogram.h"
#include "src/raft/sharded_kv.h"
#include "src/workload/ycsb.h"

namespace depfast {
namespace bench {
namespace {

constexpr uint64_t kRecords = 1u << 20;  // >= 1M records

MultiRaftOptions BenchOptions(ClusterTransport kind) {
  MultiRaftOptions opts;
  opts.n_nodes = 3;
  opts.transport_kind = kind;
  opts.raft.send_queue_cap_bytes = 256 * 1024;
  opts.raft.batch_window_us = 200;
  // Near-zero modeled costs: the subject is the shared socket/reactor path,
  // not the CPU model.
  opts.raft.leader_cmd_cost_us = 1;
  opts.raft.leader_propose_cost_us = 1;
  opts.raft.follower_append_cost_us = 1;
  opts.raft.apply_cost_us = 1;
  opts.disk.base_latency_us = 20;
  return opts;
}

struct LoadResult {
  uint64_t n_ops = 0;
  double throughput_ops = 0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
};

// Closed-loop zipfian write load on one session: `n_coro` coroutines, each
// op timed into a shared histogram.
LoadResult RunZipfLoad(ShardedKvSession& session, int n_coro, uint64_t warmup_us,
                       uint64_t measure_us, uint64_t seed) {
  YcsbConfig ycfg;
  ycfg.n_records = kRecords;
  ycfg.zipfian = true;
  ycfg.write_fraction = 1.0;
  ycfg.value_bytes = 100;
  ycfg.seed = seed;
  auto workload = std::make_shared<YcsbWorkload>(ycfg);
  auto hist = std::make_shared<Histogram>();
  std::atomic<int> live{0};
  std::atomic<uint64_t> ops{0};
  uint64_t start_measure = MonotonicUs() + warmup_us;
  uint64_t deadline = start_measure + measure_us;
  session.thread()->reactor()->Post([&, workload, hist, start_measure, deadline]() {
    for (int c = 0; c < n_coro; c++) {
      live.fetch_add(1);
      Coroutine::Create([&, workload, hist, start_measure, deadline, c]() {
        Rng rng(seed * 7919 + static_cast<uint64_t>(c));
        while (true) {
          uint64_t now = MonotonicUs();
          if (now >= deadline) {
            break;
          }
          KvCommand cmd = workload->NextOp(rng);
          uint64_t t0 = MonotonicUs();
          bool ok = session.Put(cmd.key, cmd.value);
          uint64_t t1 = MonotonicUs();
          if (ok && t0 >= start_measure && t1 <= deadline) {
            ops.fetch_add(1, std::memory_order_relaxed);
            hist->Record(t1 - t0);
          }
        }
        live.fetch_sub(1);
      });
    }
  });
  while (live.load() != 0 || MonotonicUs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  LoadResult r;
  r.n_ops = ops.load();
  r.throughput_ops = static_cast<double>(r.n_ops) * 1e6 / static_cast<double>(measure_us);
  r.p50_us = hist->Percentile(50);
  r.p99_us = hist->Percentile(99);
  return r;
}

struct ScalePoint {
  int groups = 0;
  LoadResult load;
  uint64_t coalesced_calls = 0;
  uint64_t batch_frames = 0;
  size_t out_conns = 0;
};

ScalePoint RunScalePoint(int groups, uint64_t warmup_us, uint64_t measure_us) {
  MultiRaftOptions opts = BenchOptions(ClusterTransport::kTcp);
  ShardedKvCluster cluster(groups, opts);
  auto session = cluster.MakeSession("bench");
  DF_CHECK_NOTNULL(session.get());
  ScalePoint p;
  p.groups = groups;
  p.load = RunZipfLoad(*session, 32, warmup_us, measure_us, 1000 + static_cast<uint64_t>(groups));
  p.coalesced_calls = cluster.CoalescedCalls();
  p.batch_frames = cluster.BatchFrames();
  p.out_conns = cluster.tcp_transport()->OutConnCount();
  printf("%-8d %12.0f %10lu %10lu %14lu %12lu %10zu\n", groups, p.load.throughput_ops,
         (unsigned long)p.load.p50_us, (unsigned long)p.load.p99_us,
         (unsigned long)p.coalesced_calls, (unsigned long)p.batch_frames, p.out_conns);
  cluster.Shutdown();
  return p;
}

struct AblationPoint {
  bool evacuation = false;
  LoadResult baseline;
  LoadResult faulted;
  uint64_t evacuations = 0;
  int leaders_on_faulty_after = 0;
};

// 64 groups, node 1 turns fail-slow after a baseline window; measure the
// faulted window with the closed loop on (verdict -> evacuate + shed) vs off
// (detection only, leaders stay pinned on the slow node).
AblationPoint RunEvacuationAblation(bool evacuation, uint64_t warmup_us, uint64_t measure_us) {
  MultiRaftOptions opts = BenchOptions(ClusterTransport::kTcp);
  opts.enable_monitor = true;
  opts.enable_mitigation = evacuation;
  opts.monitor.window_us = 300000;
  opts.monitor.min_baseline_windows = 2;
  opts.monitor.min_latency_us = 5000;
  opts.monitor.latency_strikes = 2;
  opts.monitor_poll_us = 50000;
  opts.mitigation.accuse_strikes = 2;
  opts.mitigation.min_mitigated_us = 60000000;  // no probation inside the run
  const int kGroups = 64;
  const int kFaulty = 1;
  ShardedKvCluster cluster(kGroups, opts);
  auto session = cluster.MakeSession("bench");
  DF_CHECK_NOTNULL(session.get());
  AblationPoint p;
  p.evacuation = evacuation;
  p.baseline = RunZipfLoad(*session, 32, warmup_us, measure_us, 2000);
  cluster.InjectFault(kFaulty, FaultType::kNetworkSlow);
  // Give the detection loop a window to close the loop before measuring
  // (with evacuation off this interval just runs the fault in).
  RunZipfLoad(*session, 32, 0, measure_us, 2001);
  p.faulted = RunZipfLoad(*session, 32, 0, measure_us, 2002);
  p.evacuations = cluster.evacuations();
  p.leaders_on_faulty_after = cluster.LeadersOnNode(kFaulty);
  printf("%-12s %14.0f %14.0f %10lu %10lu %12lu %8d\n", evacuation ? "on" : "off",
         p.baseline.throughput_ops, p.faulted.throughput_ops,
         (unsigned long)p.faulted.p50_us, (unsigned long)p.faulted.p99_us,
         (unsigned long)p.evacuations, p.leaders_on_faulty_after);
  cluster.ClearFault(kFaulty);
  cluster.Shutdown();
  return p;
}

void AppendLoadJson(std::string* out, const LoadResult& r) {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "{\"n_ops\": %lu, \"throughput_ops\": %.1f, \"p50_us\": %lu, \"p99_us\": %lu}",
           (unsigned long)r.n_ops, r.throughput_ops, (unsigned long)r.p50_us,
           (unsigned long)r.p99_us);
  *out += buf;
}

int Main(int argc, char** argv) {
  std::string out_path = TakeFlag(argc, argv, "--out", "BENCH_multiraft.json");
  bool quick = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  uint64_t warmup_us = quick ? 300000 : 800000;
  uint64_t measure_us = quick ? 1000000 : 3000000;

  PrintHeader("Multi-Raft scaling — 3 nodes over TCP, zipfian writes, 1M records");
  printf("%-8s %12s %10s %10s %14s %12s %10s\n", "groups", "ops/s", "p50(us)", "p99(us)",
         "coalesced", "batchframes", "sockets");
  std::vector<ScalePoint> scale;
  for (int groups : {1, 4, 16, 64}) {
    scale.push_back(RunScalePoint(groups, warmup_us, measure_us));
  }

  PrintHeader("Evacuation ablation — 64 groups, node 1 fail-slow (network)");
  printf("%-12s %14s %14s %10s %10s %12s %8s\n", "evacuation", "base ops/s", "faulted ops/s",
         "p50(us)", "p99(us)", "evacuated", "left");
  std::vector<AblationPoint> ablation;
  ablation.push_back(RunEvacuationAblation(false, warmup_us, measure_us));
  ablation.push_back(RunEvacuationAblation(true, warmup_us, measure_us));

  std::string json = "{\n  \"bench\": \"multiraft\",\n  \"n_nodes\": 3,\n";
  json += "  \"records\": " + std::to_string(kRecords) + ",\n";
  json += "  \"zipf_theta\": 0.99,\n";
  json += "  \"measure_us\": " + std::to_string(measure_us) + ",\n";
  json += "  \"scaling\": [\n";
  for (size_t i = 0; i < scale.size(); i++) {
    const ScalePoint& p = scale[i];
    json += "    {\"groups\": " + std::to_string(p.groups) + ", \"load\": ";
    AppendLoadJson(&json, p.load);
    json += ", \"coalesced_calls\": " + std::to_string(p.coalesced_calls);
    json += ", \"batch_frames\": " + std::to_string(p.batch_frames);
    json += ", \"out_conns\": " + std::to_string(p.out_conns) + "}";
    json += i + 1 < scale.size() ? ",\n" : "\n";
  }
  json += "  ],\n  \"evacuation_ablation\": [\n";
  for (size_t i = 0; i < ablation.size(); i++) {
    const AblationPoint& p = ablation[i];
    json += std::string("    {\"evacuation\": ") + (p.evacuation ? "true" : "false");
    json += ", \"baseline\": ";
    AppendLoadJson(&json, p.baseline);
    json += ", \"faulted\": ";
    AppendLoadJson(&json, p.faulted);
    json += ", \"evacuations\": " + std::to_string(p.evacuations);
    json += ", \"leaders_on_faulty_after\": " + std::to_string(p.leaders_on_faulty_after) + "}";
    json += i + 1 < ablation.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  FILE* f = fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  fwrite(json.data(), 1, json.size(), f);
  fclose(f);
  printf("\nresults written to %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace depfast

int main(int argc, char** argv) { return depfast::bench::Main(argc, argv); }
