// Ablation benches for DepFast's design choices (DESIGN.md §5):
//
//  A. QuorumEvent vs per-event sequential waits — the paper's two §3.1 code
//     snippets, measured: broadcast to n replicas with one fail-slow member
//     and wait (a) sequentially on each RPC, (b) on a QuorumEvent majority.
//  B. Bounded quorum-aware send queues vs unbounded buffering — leader-side
//     buffer footprint against a wedged peer.
//  C. Pipelined replication rounds vs stop-and-wait — end-to-end DepFastRaft
//     throughput with max_in_flight_rounds = 1 vs 16.
//  D. Proposal coalescing — batch window {0,1,4}ms x op cap {1,16,64}:
//     end-to-end throughput/latency plus the leader's amortization counters
//     (ops per entry, WAL appends per flush). Window 0 is the unbatched
//     seed behaviour; cap 1 shows a window without coalescing buys nothing.
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "src/rpc/rpc.h"
#include "src/runtime/compound_event.h"

namespace depfast {
namespace bench {
namespace {

constexpr int32_t kEcho = 1;

// One-node-per-reactor echo servers; server `slow_id` sleeps before replying.
struct EchoCluster {
  explicit EchoCluster(int n, NodeId slow_id, uint64_t slow_us) : transport(QuietLink()) {
    for (int i = 0; i < n; i++) {
      auto node = std::make_unique<ReactorThread>("e" + std::to_string(i + 2));
      NodeId id = static_cast<NodeId>(i) + 2;
      std::atomic<bool> ready{false};
      node->reactor()->Post([&, id]() {
        auto ep = std::make_unique<RpcEndpoint>(id, "e" + std::to_string(id),
                                                Reactor::Current(), &transport);
        ep->Register(kEcho, [id, slow_id, slow_us](NodeId, Marshal& args, Marshal* reply) {
          if (id == slow_id) {
            SleepUs(slow_us);
          }
          *reply << true;
        });
        endpoints.push_back(std::move(ep));
        ready = true;
      });
      while (!ready.load()) {
      }
      nodes.push_back(std::move(node));
    }
  }
  ~EchoCluster() {
    for (auto& n : nodes) {
      n->Stop();
    }
  }
  static LinkParams QuietLink() {
    LinkParams p;
    p.base_delay_us = 150;
    p.jitter_p = 0;
    return p;
  }
  SimTransport transport;
  std::vector<std::unique_ptr<RpcEndpoint>> endpoints;  // server-owned
  std::vector<std::unique_ptr<ReactorThread>> nodes;
};

void AblationA() {
  PrintHeader("Ablation A — sequential per-RPC waits vs QuorumEvent (one fail-slow replica)");
  printf("%-10s %-28s %-28s\n", "replicas", "sequential wait (us/round)", "quorum wait (us/round)");
  for (int n : {3, 5, 7}) {
    EchoCluster cluster(n, /*slow_id=*/2, /*slow_us=*/20000);  // first replica: +20ms
    Reactor reactor("caller");
    RpcEndpoint caller(1, "caller", &reactor, &cluster.transport);
    const int kRounds = 50;

    auto run = [&](bool use_quorum) {
      uint64_t total = 0;
      bool done = false;
      Coroutine::Create([&]() {
        for (int r = 0; r < kRounds; r++) {
          uint64_t begin = MonotonicUs();
          if (use_quorum) {
            auto q = std::make_shared<QuorumEvent>(n, n / 2 + 1);
            for (int i = 0; i < n; i++) {
              Marshal args;
              args << true;
              CallOpts opts;
              opts.timeout_us = 100000;
              q->AddChild(caller.Call(static_cast<NodeId>(i) + 2, kEcho, std::move(args), opts));
            }
            q->Wait();
          } else {
            // The paper's first snippet: wait each RPC individually.
            for (int i = 0; i < n; i++) {
              Marshal args;
              args << true;
              auto ev = caller.Call(static_cast<NodeId>(i) + 2, kEcho, std::move(args));
              ev->Wait();
            }
          }
          total += MonotonicUs() - begin;
        }
        done = true;
      });
      reactor.RunUntil([&]() { return done; }, 60000000);
      return total / kRounds;
    };
    uint64_t seq = run(false);
    uint64_t quo = run(true);
    printf("%-10d %-28llu %-28llu\n", n, (unsigned long long)seq, (unsigned long long)quo);
  }
  printf("(the slow replica adds 20ms to every sequential round; the quorum round\n"
         " completes at majority speed regardless)\n");
}

void AblationB() {
  PrintHeader("Ablation B — bounded quorum-aware send queue vs unbounded buffering");
  LinkParams p;
  p.base_delay_us = 500000;  // long in-flight window stands in for a wedged peer
  p.bytes_per_us = 10;
  p.jitter_p = 0;
  printf("%-12s %16s %16s\n", "mode", "sent msgs", "buffered bytes");
  for (bool bounded : {false, true}) {
    Reactor reactor("n");
    SimTransport transport(p);
    transport.RegisterNode(2, &reactor, [](NodeId, Marshal) {});
    if (bounded) {
      transport.SetSendQueueCap(1, 64 * 1024);
    }
    int sent = 0;
    for (int i = 0; i < 2000; i++) {
      Marshal m;
      m << std::string(1000, 'x');
      SendOpts opts;
      opts.discardable = bounded;  // quorum-covered broadcast
      if (transport.Send(1, 2, std::move(m), opts)) {
        sent++;
      }
    }
    printf("%-12s %16d %16llu\n", bounded ? "bounded" : "unbounded", sent,
           (unsigned long long)transport.OutgoingBytes(1));
  }
  printf("(unbounded buffering is the RethinkDB root cause; DepFast's cap + quorum\n"
         " discard keeps the footprint constant and repairs via catch-up)\n");
}

void AblationC(uint64_t measure_us) {
  PrintHeader("Ablation C — pipelined replication rounds vs stop-and-wait");
  printf("%-22s %12s %12s %12s\n", "pipeline depth", "tput(op/s)", "avg(us)", "p99(us)");
  for (int depth : {1, 4, 16}) {
    auto opts = PaperRaftCluster(3);
    opts.raft.max_in_flight_rounds = depth;
    RaftCluster cluster(opts);
    BenchResult r = RunDriver(cluster, PaperDriver(measure_us));
    printf("%-22d %12.0f %12.0f %12llu\n", depth, r.throughput_ops, r.avg_latency_us,
           (unsigned long long)r.p99_us);
  }
}

void AblationD(uint64_t measure_us) {
  PrintHeader("Ablation D — proposal coalescing: batch window x op cap");
  printf("%-10s %-8s %12s %12s %12s %11s %12s\n", "window", "cap", "tput(op/s)", "avg(us)",
         "p99(us)", "ops/entry", "appends/fl");
  for (uint64_t window_ms : {0, 1, 4}) {
    for (size_t cap : {size_t{1}, size_t{16}, size_t{64}}) {
      auto opts = PaperRaftCluster(3);
      opts.raft = PaperBatchedRaftConfig(window_ms * 1000, cap);
      RaftCluster cluster(opts);
      BenchResult r = RunDriver(cluster, PaperDriver(measure_us));
      cluster.ExportMetrics();
      RaftCounters c = cluster.CountersOf(0);
      double ops_per_entry = c.entries_proposed > 0
                                 ? static_cast<double>(c.ops_proposed) /
                                       static_cast<double>(c.entries_proposed)
                                 : 0;
      double appends_per_flush = c.wal_flushes > 0 ? static_cast<double>(c.wal_appends) /
                                                         static_cast<double>(c.wal_flushes)
                                                   : 0;
      printf("%-10s %-8zu %12.0f %12.0f %12llu %11.1f %12.1f\n",
             (std::to_string(window_ms) + "ms").c_str(), cap, r.throughput_ops,
             r.avg_latency_us, (unsigned long long)r.p99_us, ops_per_entry, appends_per_flush);
    }
  }
  printf("(window 0 = the unbatched seed: one entry per op. The win comes from paying\n"
         " the per-entry propose cost, WAL record and replication round once per batch)\n");
}

}  // namespace
}  // namespace bench
}  // namespace depfast

int main(int argc, char** argv) {
  depfast::SetLogLevel(depfast::LogLevel::kError);
  std::string metrics_json = depfast::bench::TakeFlag(argc, argv, "--metrics-json");
  uint64_t measure_us = argc > 1 ? std::stoull(argv[1]) * 1000000ull : 2000000;
  depfast::bench::AblationA();
  depfast::bench::AblationB();
  depfast::bench::AblationC(measure_us);
  depfast::bench::AblationD(measure_us);
  depfast::bench::DumpMetricsJson(metrics_json);
  return 0;
}
