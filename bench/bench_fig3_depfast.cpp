// Figure 3 reproduction: DepFastRaft throughput / average latency / P99
// latency with a minority of fail-slow followers, on 3-node and 5-node
// deployments, for every Table 1 fault type.
//
// Paper claim (§3.4): all three metrics stay within a 5% drift of the
// no-fault baseline; base performance ~5K req/s.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/faults/fault_types.h"

namespace depfast {
namespace bench {
namespace {

BenchResult RunCondition(int n_nodes, FaultType fault, uint64_t measure_us) {
  RaftCluster cluster(PaperRaftCluster(n_nodes));
  // A minority of followers fail slow: 1 of 3, or 2 of 5 (nodes 1.. are
  // followers; node 0 is the pinned leader).
  int n_faulty = n_nodes == 3 ? 1 : 2;
  if (fault != FaultType::kNone) {
    for (int i = 1; i <= n_faulty; i++) {
      cluster.InjectFault(i, fault);
    }
  }
  return RunDriver(cluster, PaperDriver(measure_us));
}

void RunDeployment(int n_nodes, uint64_t measure_us) {
  PrintHeader("Figure 3 — DepFastRaft, " + std::to_string(n_nodes) + " nodes (" +
              (n_nodes == 3 ? "1" : "2") + " fail-slow follower(s))");
  printf("%-20s %12s %12s %12s %10s %10s %10s\n", "fault", "tput(op/s)", "avg(us)",
         "p99(us)", "tput(rel)", "avg(rel)", "p99(rel)");
  BenchResult base;
  for (FaultType fault : {FaultType::kNone, FaultType::kCpuSlow, FaultType::kCpuContention,
                          FaultType::kDiskSlow, FaultType::kDiskContention,
                          FaultType::kMemContention, FaultType::kNetworkSlow}) {
    BenchResult r = RunCondition(n_nodes, fault, measure_us);
    if (fault == FaultType::kNone) {
      base = r;
    }
    double tput_rel = base.throughput_ops > 0 ? r.throughput_ops / base.throughput_ops : 0;
    double avg_rel = base.avg_latency_us > 0 ? r.avg_latency_us / base.avg_latency_us : 0;
    double p99_rel =
        base.p99_us > 0 ? static_cast<double>(r.p99_us) / static_cast<double>(base.p99_us) : 0;
    printf("%-20s %12.0f %12.0f %12llu %10.3f %10.3f %10.3f\n", FaultTypeName(fault),
           r.throughput_ops, r.avg_latency_us, (unsigned long long)r.p99_us, tput_rel, avg_rel,
           p99_rel);
  }
}

}  // namespace
}  // namespace bench
}  // namespace depfast

int main(int argc, char** argv) {
  depfast::SetLogLevel(depfast::LogLevel::kWarn);
  uint64_t measure_us = 2000000;
  if (argc > 1) {
    measure_us = std::stoull(argv[1]) * 1000000ull;
  }
  depfast::bench::RunDeployment(3, measure_us);
  depfast::bench::RunDeployment(5, measure_us);
  printf("\nPaper reference (Fig. 3): DepFastRaft fluctuates within 5%% on throughput,\n"
         "average latency and P99 latency under a minority of fail-slow followers;\n"
         "base performance ~5K req/s.\n");
  return 0;
}
