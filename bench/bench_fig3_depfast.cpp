// Figure 3 reproduction: DepFastRaft throughput / average latency / P99
// latency with a minority of fail-slow followers, on 3-node and 5-node
// deployments, for every Table 1 fault type.
//
// Paper claim (§3.4): all three metrics stay within a 5% drift of the
// no-fault baseline; base performance ~5K req/s.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/faults/fault_types.h"

namespace depfast {
namespace bench {
namespace {

struct ConditionResult {
  BenchResult bench;
  RaftCounters leader;
};

ConditionResult RunCondition(int n_nodes, FaultType fault, uint64_t measure_us, bool batched,
                             uint64_t trace_sample) {
  auto opts = PaperRaftCluster(n_nodes);
  if (batched) {
    // 16-op cap: at this concurrency batches flush on the cap, not the
    // window, so coalescing costs no added latency (see Ablation D).
    opts.raft = PaperBatchedRaftConfig(1000, 16);
  }
  RaftCluster cluster(opts);
  // A minority of followers fail slow: 1 of 3, or 2 of 5 (nodes 1.. are
  // followers; node 0 is the pinned leader).
  int n_faulty = n_nodes == 3 ? 1 : 2;
  if (fault != FaultType::kNone) {
    for (int i = 1; i <= n_faulty; i++) {
      cluster.InjectFault(i, fault);
    }
  }
  // Deeper closed-loop pool than the other figures (64 vs 32 coroutines) in
  // BOTH modes: the unbatched leader is capacity-bound either way, while the
  // batched one needs enough concurrent arrivals to form full batches — the
  // paper's own runs use 256-1200 open clients.
  DriverConfig drv = PaperDriver(measure_us);
  drv.coroutines_per_client = 64;
  drv.trace_sample = trace_sample;
  ConditionResult r;
  r.bench = RunDriver(cluster, drv);
  r.leader = cluster.CountersOf(0);
  cluster.ExportMetrics();
  return r;
}

// Runs the full fault sweep for one deployment/mode; returns the no-fault
// baseline so the batched/unbatched speedup can be reported.
BenchResult RunDeployment(int n_nodes, uint64_t measure_us, bool batched,
                          uint64_t trace_sample) {
  PrintHeader("Figure 3 — DepFastRaft, " + std::to_string(n_nodes) + " nodes (" +
              (n_nodes == 3 ? "1" : "2") + " fail-slow follower(s)), batching " +
              (batched ? "ON (1ms window, 16-op cap)" : "OFF"));
  printf("%-20s %12s %12s %12s %10s %10s %10s\n", "fault", "tput(op/s)", "avg(us)",
         "p99(us)", "tput(rel)", "avg(rel)", "p99(rel)");
  BenchResult base;
  for (FaultType fault : {FaultType::kNone, FaultType::kCpuSlow, FaultType::kCpuContention,
                          FaultType::kDiskSlow, FaultType::kDiskContention,
                          FaultType::kMemContention, FaultType::kNetworkSlow}) {
    ConditionResult c = RunCondition(n_nodes, fault, measure_us, batched, trace_sample);
    BenchResult& r = c.bench;
    if (fault == FaultType::kNone) {
      base = r;
    }
    double tput_rel = base.throughput_ops > 0 ? r.throughput_ops / base.throughput_ops : 0;
    double avg_rel = base.avg_latency_us > 0 ? r.avg_latency_us / base.avg_latency_us : 0;
    double p99_rel =
        base.p99_us > 0 ? static_cast<double>(r.p99_us) / static_cast<double>(base.p99_us) : 0;
    printf("%-20s %12.0f %12.0f %12llu %10.3f %10.3f %10.3f\n", FaultTypeName(fault),
           r.throughput_ops, r.avg_latency_us, (unsigned long long)r.p99_us, tput_rel, avg_rel,
           p99_rel);
    if (fault == FaultType::kNone) {
      printf("  leader: %s\n", CountersRow(c.leader).c_str());
    }
    if (!r.stage_table.empty()) {
      printf("  per-stage decomposition (%s):\n%s\n", FaultTypeName(fault),
             r.stage_table.c_str());
    }
  }
  return base;
}

// ---- Ablation E: the real-socket path (writev on/off × buffer cap) ----
//
// Runs the same closed-loop workload over TcpTransport (loopback sockets)
// in four transport configurations, each healthy and with one slow-drain
// (64 KiB/s) follower. Reports wire counters alongside throughput so the
// mechanism is visible: frames per writev (coalescing), drops (bounded
// buffer shedding quorum-covered traffic) and the leader's peak resident
// bytes toward the slow follower (the §2 memory pathology when unbounded).
void RunTcpAblation(uint64_t measure_us) {
  PrintHeader("Ablation E — real-socket transport: writev x buffer cap, 3 nodes");
  printf("%-28s %10s %9s %10s %12s %8s %12s\n", "condition", "tput(op/s)", "p99(us)",
         "frames/wv", "drops", "bp", "peak_q(KB)");
  struct Cond {
    const char* name;
    bool writev;
    uint64_t cap;
  };
  const Cond conds[] = {
      {"writev+cap256K", true, 256 * 1024},
      {"writev+uncapped", true, 0},
      {"no-writev+cap256K", false, 256 * 1024},
      {"no-writev+uncapped", false, 0},
  };
  for (const Cond& cond : conds) {
    for (bool faulted : {false, true}) {
      RaftClusterOptions opts = TcpRaftCluster(cond.writev, cond.cap);
      RaftCluster cluster(opts);
      if (faulted) {
        cluster.InjectFault(2, FaultType::kNetworkSlow);
      }
      DriverConfig drv = PaperDriver(measure_us);
      drv.coroutines_per_client = 16;
      drv.warmup_us = 300000;
      BenchResult r = RunDriver(cluster, drv);
      cluster.ExportMetrics();
      TransportCounters tc = cluster.tcp_transport()->counters();
      uint64_t peak = cluster.tcp_transport()->PeakQueuedBytesTo(opts.first_node_id + 2);
      double frames_per_wv =
          tc.writev_calls > 0 ? static_cast<double>(tc.frames_sent) / tc.writev_calls : 0;
      printf("%-22s %5s %10.0f %9llu %10.1f %12llu %8llu %12.1f\n", cond.name,
             faulted ? "slow" : "ok", r.throughput_ops, (unsigned long long)r.p99_us,
             frames_per_wv, (unsigned long long)tc.drops,
             (unsigned long long)tc.backpressure_stalls, peak / 1024.0);
    }
  }
  printf("\nReading: frames/wv > 1 shows gather-writes amortizing syscalls; under the\n"
         "slow-drain follower the capped runs shed load (drops > 0, peak_q <= cap)\n"
         "while the uncapped runs grow peak_q without bound for as long as the run\n"
         "lasts — the RethinkDB leader-memory pathology of §2.\n");
}

// ---- Ablation F: closed-loop mitigation (off vs on) ----
//
// The same slow-drain-follower workload as Ablation E, with the verdict-
// driven MitigationController toggled. With mitigation ON the detector's
// verdicts engage the shed/demotion policy during warmup, so the measured
// window shows the mitigated steady state: replication toward the accused
// follower reduced to heartbeat-shaped frames (mit_skips), overflow refused
// at the shrunken shed cap (shed_drops), throughput pinned to the no-fault
// baseline. With mitigation OFF only the static bounded-queue defense acts.
void RunMitigationAblation(uint64_t measure_us, const std::string& mode,
                           uint64_t trace_sample) {
  PrintHeader("Ablation F — closed-loop mitigation, 3 nodes over TCP, slow-drain follower");
  printf("%-16s %6s %10s %9s %12s %10s %12s %10s\n", "mitigation", "fault", "tput(op/s)",
         "p99(us)", "shed_drops", "mit_skips", "transitions", "s3 state");
  for (bool mitigate : {false, true}) {
    if ((mode == "off" && mitigate) || (mode == "on" && !mitigate)) {
      continue;
    }
    for (bool faulted : {false, true}) {
      RaftClusterOptions opts = TcpRaftCluster(/*enable_writev=*/true, 256 * 1024);
      if (mitigate) {
        opts.enable_mitigation = true;
        opts.monitor.window_us = 300000;
        opts.monitor.min_baseline_windows = 2;
        opts.monitor.min_latency_us = 5000;
        opts.monitor.latency_strikes = 2;
        opts.monitor_poll_us = 50000;
        opts.mitigation.accuse_strikes = 2;
        opts.mitigation.min_mitigated_us = 30000000;  // hold for the whole run
      }
      RaftCluster cluster(opts);
      if (mitigate) {
        // The detector needs healthy baseline windows before it can accuse
        // anyone: prime the cluster fault-free first.
        DriverConfig prime = PaperDriver(1000000);
        prime.coroutines_per_client = 16;
        RunDriver(cluster, prime);
      }
      if (faulted) {
        cluster.InjectFault(2, FaultType::kNetworkSlow);
      }
      DriverConfig drv = PaperDriver(measure_us);
      drv.coroutines_per_client = 16;
      drv.trace_sample = trace_sample;
      // Long warmup in the mitigated-faulted condition: the verdict and the
      // engage both happen before measurement starts.
      drv.warmup_us = (mitigate && faulted) ? 2000000 : 300000;
      BenchResult r = RunDriver(cluster, drv);
      cluster.ExportMetrics();
      TransportCounters tc = cluster.tcp_transport()->counters();
      RaftCounters rc = cluster.CountersOf(0);
      uint64_t transitions = cluster.mitigation() != nullptr ? cluster.mitigation()->transitions() : 0;
      printf("%-16s %6s %10.0f %9llu %12llu %10llu %12llu %10s\n", mitigate ? "on" : "off",
             faulted ? "slow" : "ok", r.throughput_ops, (unsigned long long)r.p99_us,
             (unsigned long long)tc.shed_drops, (unsigned long long)rc.mitigated_skips,
             (unsigned long long)transitions,
             MitigationStateName(cluster.MitigationStateOf(2)));
      if (!r.stage_table.empty()) {
        // The off-vs-on contrast to look for: with mitigation OFF the slow
        // follower's replicate leg dominates P99; ON it should vanish.
        printf("\n  per-stage decomposition (mitigation %s, fault %s):\n%s\n",
               mitigate ? "on" : "off", faulted ? "slow" : "ok", r.stage_table.c_str());
      }
    }
  }
  printf("\nReading: with mitigation ON the faulted run engages during warmup\n"
         "(s3 state = mitigated, transitions > 0): entry payloads toward s3 stop\n"
         "(mit_skips grows), its resident budget shrinks (shed_drops), and the\n"
         "fault-free rows take zero actions. Throughput under the fault should\n"
         "match the OFF row or better — the controller's win is the bounded\n"
         "blast radius, visible in shed_drops and the leader's resident bytes.\n");
}

}  // namespace
}  // namespace bench
}  // namespace depfast

int main(int argc, char** argv) {
  depfast::SetLogLevel(depfast::LogLevel::kWarn);
  std::string metrics_json = depfast::bench::TakeFlag(argc, argv, "--metrics-json");
  // --mitigation {off,on,both}: run Ablation F (closed-loop mitigation over
  // TCP) instead of the Figure 3 sweep. An optional positional argument
  // still selects the measure window in seconds.
  std::string mitigation_mode = depfast::bench::TakeFlag(argc, argv, "--mitigation");
  // --trace-sample N: 1-in-N request tracing on every client session; prints
  // the per-stage latency decomposition table after each condition.
  std::string trace_sample_s = depfast::bench::TakeFlag(argc, argv, "--trace-sample");
  uint64_t trace_sample = trace_sample_s.empty() ? 0 : std::stoull(trace_sample_s);
  uint64_t measure_us = 2000000;
  if (!mitigation_mode.empty()) {
    if (argc > 1) {
      measure_us = std::stoull(argv[1]) * 1000000ull;
    }
    depfast::bench::RunMitigationAblation(measure_us, mitigation_mode, trace_sample);
    depfast::bench::DumpMetricsJson(metrics_json);
    return 0;
  }
  int argi = 1;
  if (argc > argi && std::string(argv[argi]) == "tcp") {
    uint64_t tcp_measure_us = 2000000;
    if (argc > argi + 1) {
      tcp_measure_us = std::stoull(argv[argi + 1]) * 1000000ull;
    }
    depfast::bench::RunTcpAblation(tcp_measure_us);
    depfast::bench::DumpMetricsJson(metrics_json);
    return 0;
  }
  if (argc > 1) {
    measure_us = std::stoull(argv[1]) * 1000000ull;
  }
  for (int n_nodes : {3, 5}) {
    auto unbatched =
        depfast::bench::RunDeployment(n_nodes, measure_us, /*batched=*/false, trace_sample);
    auto batched =
        depfast::bench::RunDeployment(n_nodes, measure_us, /*batched=*/true, trace_sample);
    if (unbatched.throughput_ops > 0) {
      printf("\n  batching speedup (%d nodes, no fault): %.2fx throughput "
             "(%.0f -> %.0f op/s)\n",
             n_nodes, batched.throughput_ops / unbatched.throughput_ops,
             unbatched.throughput_ops, batched.throughput_ops);
    }
  }
  printf("\nPaper reference (Fig. 3): DepFastRaft fluctuates within 5%% on throughput,\n"
         "average latency and P99 latency under a minority of fail-slow followers;\n"
         "base performance ~5K req/s. Batching changes the base, not the invariant:\n"
         "the drift columns must stay within 5%% in BOTH modes.\n");
  depfast::bench::DumpMetricsJson(metrics_json);
  return 0;
}
